// Command dbgsh is an interactive gdb-style shell over the emulated
// victim: it stages a DNS response (benign or the DoS payload), parks the
// CPU at parse_response, and accepts debugger commands.
//
// Usage:
//
//	dbgsh -arch arms -crash
//
// Commands:
//
//	b <symbol|hexaddr>   set a breakpoint
//	c                    continue to breakpoint or terminal event
//	s [n]                single-step n instructions (default 1)
//	regs                 dump registers
//	x <hexaddr> [n]      hex-dump n bytes (default 64)
//	dis [hexaddr] [n]    disassemble n instructions (default 8, at pc)
//	where                show pc and containing function
//	q                    quit
//
// A non-interactive subcommand inspects telemetry snapshots written by
// the other tools' -metrics flag, or tails a live -listen/labd
// observability server, printing counter deltas between polls:
//
//	dbgsh telemetry metrics.json
//	dbgsh telemetry -watch 127.0.0.1:8089 [-interval 1s] [-n 10]
//
// A second subcommand inspects a recon snapshot store written by the
// other tools' -snapdir flag — listing entries with sizes and
// compression ratios, verifying payload hashes, pruning stale versions:
//
//	dbgsh snap [-verify] [-prune] /path/to/snapdir
//
// A third subcommand inspects declarative scenario programs — listing
// the embedded specs, validating a spec file, and dumping the compiled
// build options, corruption geometry and protection matrix:
//
//	dbgsh scenario list
//	dbgsh scenario validate my-cve.scn
//	dbgsh scenario dump heap-adjacent
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"flag"

	"connlab/internal/dbg"
	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "telemetry" {
		if err := telemetryCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbgsh:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "snap" {
		if err := snapCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbgsh:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		if err := scenarioCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbgsh:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dbgsh:", err)
		os.Exit(1)
	}
}

// telemetryCmd renders a -metrics snapshot file for terminal
// inspection, or (with -watch) tails a live observability server.
func telemetryCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dbgsh telemetry", flag.ContinueOnError)
	fs.SetOutput(stdout)
	watch := fs.String("watch", "", "poll a live -listen/labd server at `addr` instead of reading a file")
	interval := fs.Duration("interval", time.Second, "poll period with -watch")
	polls := fs.Int("n", 0, "stop after `count` polls with -watch (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch != "" {
		return watchTelemetry(*watch, *interval, *polls, stdout)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dbgsh telemetry <snapshot.json> | dbgsh telemetry -watch <addr>")
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("parse %s: %w", fs.Arg(0), err)
	}
	fmt.Fprint(stdout, telemetry.FormatSnapshot(snap))
	return nil
}

// fetchSnapshot pulls one /snapshot document from a live server.
func fetchSnapshot(url string) (telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	resp, err := http.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("parse %s: %w", url, err)
	}
	return snap, nil
}

// watchTelemetry polls a live observability server and prints the
// counters that moved between consecutive polls — a `watch`-style ops
// view of a running campaign.
func watchTelemetry(addr string, interval time.Duration, polls int, stdout io.Writer) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	var prev telemetry.Snapshot
	for i := 0; polls == 0 || i < polls; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		snap, err := fetchSnapshot(base + "/snapshot")
		if err != nil {
			return err
		}
		if i == 0 {
			tool := "?"
			if snap.Run != nil {
				tool = snap.Run.Tool
			}
			fmt.Fprintf(stdout, "watching %s (tool %s, schema v%d): %d counters, %d spans, %d events\n",
				addr, tool, snap.SchemaVersion, len(snap.Counters), snap.SpanCount, snap.EventCount)
			prev = snap
			continue
		}
		names := make([]string, 0, len(snap.Counters))
		for name, v := range snap.Counters {
			if v != prev.Counters[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "[%d] spans +%d events +%d\n",
			i, snap.SpanCount-prev.SpanCount, snap.EventCount-prev.EventCount)
		for _, name := range names {
			fmt.Fprintf(stdout, "  %-28s +%-10d (%d)\n",
				name, snap.Counters[name]-prev.Counters[name], snap.Counters[name])
		}
		prev = snap
	}
	return nil
}

func run() error {
	archFlag := flag.String("arch", "x86s", "architecture: x86s or arms")
	crash := flag.Bool("crash", false, "stage the malicious oversized response")
	wx := flag.Bool("wx", false, "enable W⊕X")
	flag.Parse()

	arch := isa.Arch(*archFlag)
	proc, err := victim.Load(arch, victim.BuildOpts{}, kernel.Config{WX: *wx, Seed: 1})
	if err != nil {
		return err
	}

	q := dns.NewQuery(0x5151, "debug.example", dns.TypeA)
	var pkt []byte
	if *crash {
		pkt, err = exploit.BuildDoS(arch).Response(q)
	} else {
		resp := dns.NewResponse(q)
		resp.Answers = []dns.RR{dns.A("debug.example", 60, [4]byte{10, 0, 0, 1})}
		pkt, err = resp.Encode()
	}
	if err != nil {
		return err
	}
	addr := proc.HeapBase()
	if f := proc.Mem().WriteBytes(addr, pkt); f != nil {
		return fmt.Errorf("stage packet: %w", f)
	}
	if err := proc.PrepareCall("parse_response", addr, uint32(len(pkt))); err != nil {
		return err
	}

	d := dbg.New(proc)
	fmt.Printf("dbgsh: %s victim, packet staged at %#x (%d bytes), pc at parse_response\n",
		arch, addr, len(pkt))
	return repl(d, proc)
}

// repl runs the command loop until quit or EOF.
func repl(d *dbg.Debugger, proc *kernel.Process) error {
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(dbg) ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if done := command(d, proc, fields); done {
			return nil
		}
	}
}

// command executes one debugger command; it reports true on quit.
func command(d *dbg.Debugger, proc *kernel.Process, fields []string) bool {
	arg := func(i int, def uint64) uint64 {
		if i >= len(fields) {
			return def
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[i], "0x"), 16, 64)
		if err != nil {
			fmt.Println("bad number:", fields[i])
			return def
		}
		return v
	}
	switch fields[0] {
	case "q", "quit":
		return true
	case "b", "break":
		if len(fields) < 2 {
			fmt.Println("usage: b <symbol|hexaddr>")
			return false
		}
		if err := d.BreakSym(fields[1]); err == nil {
			fmt.Println("breakpoint at", fields[1])
			return false
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
		if err != nil {
			fmt.Println("no such symbol and not an address:", fields[1])
			return false
		}
		d.Break(uint32(v))
		fmt.Printf("breakpoint at %#x\n", v)
	case "c", "continue":
		stop := d.Continue(kernel.DefaultInstrBudget)
		if stop.Breakpoint {
			fmt.Printf("breakpoint hit at %s\n", d.FuncOf(stop.Addr))
		} else if stop.Result != nil {
			fmt.Printf("terminal: %v\n", *stop.Result)
		}
	case "s", "step":
		n := int(arg(1, 1))
		for i := 0; i < n; i++ {
			if res := d.StepInstr(); res != nil {
				fmt.Printf("terminal: %v\n", *res)
				return false
			}
		}
		lines, _ := d.Disasm(proc.CPU().PC(), 1)
		if len(lines) > 0 {
			fmt.Println(lines[0])
		}
	case "regs":
		fmt.Print(d.Regs())
	case "x":
		if len(fields) < 2 {
			fmt.Println("usage: x <hexaddr> [n]")
			return false
		}
		a := uint32(arg(1, 0))
		n := uint32(arg(2, 0x40))
		b, err := d.ReadMem(a, n)
		if err != nil {
			fmt.Println("read:", err)
			return false
		}
		hexdump(a, b)
	case "dis":
		a := uint32(arg(1, uint64(proc.CPU().PC())))
		n := int(arg(2, 8))
		lines, err := d.Disasm(a, n)
		if err != nil {
			fmt.Println("disasm:", err)
			return false
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "where":
		pc := proc.CPU().PC()
		fmt.Printf("pc = %#08x (%s), sp = %#08x\n", pc, d.FuncOf(pc), proc.CPU().SP())
	default:
		fmt.Println("commands: b c s regs x dis where q")
	}
	return false
}

// hexdump prints a classic 16-byte-per-row dump.
func hexdump(base uint32, b []byte) {
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Printf("%08x  ", base+uint32(i))
		for j := i; j < end; j++ {
			fmt.Printf("%02x ", b[j])
		}
		for j := end; j < i+16; j++ {
			fmt.Print("   ")
		}
		fmt.Print(" |")
		for j := i; j < end; j++ {
			c := b[j]
			if c < 0x20 || c > 0x7E {
				c = '.'
			}
			fmt.Printf("%c", c)
		}
		fmt.Println("|")
	}
}
