// Command dbgsh is an interactive gdb-style shell over the emulated
// victim: it stages a DNS response (benign or the DoS payload), parks the
// CPU at parse_response, and accepts debugger commands.
//
// Usage:
//
//	dbgsh -arch arms -crash
//
// Commands:
//
//	b <symbol|hexaddr>   set a breakpoint
//	c                    continue to breakpoint or terminal event
//	s [n]                single-step n instructions (default 1)
//	regs                 dump registers
//	x <hexaddr> [n]      hex-dump n bytes (default 64)
//	dis [hexaddr] [n]    disassemble n instructions (default 8, at pc)
//	where                show pc and containing function
//	q                    quit
//
// A non-interactive subcommand inspects telemetry snapshots written by
// the other tools' -metrics flag:
//
//	dbgsh telemetry metrics.json
//
// A second subcommand inspects a recon snapshot store written by the
// other tools' -snapdir flag — listing entries with sizes and
// compression ratios, verifying payload hashes, pruning stale versions:
//
//	dbgsh snap [-verify] [-prune] /path/to/snapdir
//
// A third subcommand inspects declarative scenario programs — listing
// the embedded specs, validating a spec file, and dumping the compiled
// build options, corruption geometry and protection matrix:
//
//	dbgsh scenario list
//	dbgsh scenario validate my-cve.scn
//	dbgsh scenario dump heap-adjacent
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flag"

	"connlab/internal/dbg"
	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "telemetry" {
		if err := telemetryCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "dbgsh:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "snap" {
		if err := snapCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbgsh:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scenario" {
		if err := scenarioCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbgsh:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dbgsh:", err)
		os.Exit(1)
	}
}

// telemetryCmd renders a -metrics snapshot file for terminal inspection.
func telemetryCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dbgsh telemetry <snapshot.json>")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("parse %s: %w", args[0], err)
	}
	fmt.Print(telemetry.FormatSnapshot(snap))
	return nil
}

func run() error {
	archFlag := flag.String("arch", "x86s", "architecture: x86s or arms")
	crash := flag.Bool("crash", false, "stage the malicious oversized response")
	wx := flag.Bool("wx", false, "enable W⊕X")
	flag.Parse()

	arch := isa.Arch(*archFlag)
	proc, err := victim.Load(arch, victim.BuildOpts{}, kernel.Config{WX: *wx, Seed: 1})
	if err != nil {
		return err
	}

	q := dns.NewQuery(0x5151, "debug.example", dns.TypeA)
	var pkt []byte
	if *crash {
		pkt, err = exploit.BuildDoS(arch).Response(q)
	} else {
		resp := dns.NewResponse(q)
		resp.Answers = []dns.RR{dns.A("debug.example", 60, [4]byte{10, 0, 0, 1})}
		pkt, err = resp.Encode()
	}
	if err != nil {
		return err
	}
	addr := proc.HeapBase()
	if f := proc.Mem().WriteBytes(addr, pkt); f != nil {
		return fmt.Errorf("stage packet: %w", f)
	}
	if err := proc.PrepareCall("parse_response", addr, uint32(len(pkt))); err != nil {
		return err
	}

	d := dbg.New(proc)
	fmt.Printf("dbgsh: %s victim, packet staged at %#x (%d bytes), pc at parse_response\n",
		arch, addr, len(pkt))
	return repl(d, proc)
}

// repl runs the command loop until quit or EOF.
func repl(d *dbg.Debugger, proc *kernel.Process) error {
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(dbg) ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if done := command(d, proc, fields); done {
			return nil
		}
	}
}

// command executes one debugger command; it reports true on quit.
func command(d *dbg.Debugger, proc *kernel.Process, fields []string) bool {
	arg := func(i int, def uint64) uint64 {
		if i >= len(fields) {
			return def
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[i], "0x"), 16, 64)
		if err != nil {
			fmt.Println("bad number:", fields[i])
			return def
		}
		return v
	}
	switch fields[0] {
	case "q", "quit":
		return true
	case "b", "break":
		if len(fields) < 2 {
			fmt.Println("usage: b <symbol|hexaddr>")
			return false
		}
		if err := d.BreakSym(fields[1]); err == nil {
			fmt.Println("breakpoint at", fields[1])
			return false
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
		if err != nil {
			fmt.Println("no such symbol and not an address:", fields[1])
			return false
		}
		d.Break(uint32(v))
		fmt.Printf("breakpoint at %#x\n", v)
	case "c", "continue":
		stop := d.Continue(kernel.DefaultInstrBudget)
		if stop.Breakpoint {
			fmt.Printf("breakpoint hit at %s\n", d.FuncOf(stop.Addr))
		} else if stop.Result != nil {
			fmt.Printf("terminal: %v\n", *stop.Result)
		}
	case "s", "step":
		n := int(arg(1, 1))
		for i := 0; i < n; i++ {
			if res := d.StepInstr(); res != nil {
				fmt.Printf("terminal: %v\n", *res)
				return false
			}
		}
		lines, _ := d.Disasm(proc.CPU().PC(), 1)
		if len(lines) > 0 {
			fmt.Println(lines[0])
		}
	case "regs":
		fmt.Print(d.Regs())
	case "x":
		if len(fields) < 2 {
			fmt.Println("usage: x <hexaddr> [n]")
			return false
		}
		a := uint32(arg(1, 0))
		n := uint32(arg(2, 0x40))
		b, err := d.ReadMem(a, n)
		if err != nil {
			fmt.Println("read:", err)
			return false
		}
		hexdump(a, b)
	case "dis":
		a := uint32(arg(1, uint64(proc.CPU().PC())))
		n := int(arg(2, 8))
		lines, err := d.Disasm(a, n)
		if err != nil {
			fmt.Println("disasm:", err)
			return false
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "where":
		pc := proc.CPU().PC()
		fmt.Printf("pc = %#08x (%s), sp = %#08x\n", pc, d.FuncOf(pc), proc.CPU().SP())
	default:
		fmt.Println("commands: b c s regs x dis where q")
	}
	return false
}

// hexdump prints a classic 16-byte-per-row dump.
func hexdump(base uint32, b []byte) {
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Printf("%08x  ", base+uint32(i))
		for j := i; j < end; j++ {
			fmt.Printf("%02x ", b[j])
		}
		for j := end; j < i+16; j++ {
			fmt.Print("   ")
		}
		fmt.Print(" |")
		for j := i; j < end; j++ {
			c := b[j]
			if c < 0x20 || c > 0x7E {
				c = '.'
			}
			fmt.Printf("%c", c)
		}
		fmt.Println("|")
	}
}
