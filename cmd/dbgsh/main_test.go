package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"connlab/internal/obs"
	"connlab/internal/telemetry"
)

// TestTelemetryCmd: the telemetry subcommand renders a -metrics snapshot
// file written by another tool.
func TestTelemetryCmd(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.Enable()
	telemetry.Inc(telemetry.CtrEmuRuns)
	snap := telemetry.TakeSnapshot()
	snap.Run = &telemetry.RunInfo{Tool: "campaign", Workers: 2}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := telemetry.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := telemetryCmd([]string{path}, &sb); err != nil {
		t.Fatalf("telemetryCmd: %v", err)
	}
	if !strings.Contains(sb.String(), "emu_runs") {
		t.Errorf("rendered snapshot missing counters:\n%s", sb.String())
	}
}

// TestTelemetryCmdErrors: wrong arity, missing files and non-snapshot
// JSON are clean errors.
func TestTelemetryCmdErrors(t *testing.T) {
	if err := telemetryCmd(nil, io.Discard); err == nil {
		t.Error("expected a usage error with no arguments")
	}
	if err := telemetryCmd([]string{"/nonexistent/m.json"}, io.Discard); err == nil {
		t.Error("expected an error for a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := telemetryCmd([]string{bad}, io.Discard); err == nil {
		t.Error("expected an error for malformed JSON")
	}
}

// TestTelemetryWatch: -watch polls a live observability server and
// prints the counters that moved between polls.
func TestTelemetryWatch(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.Enable()
	telemetry.Add(telemetry.CtrEmuRuns, 3)
	srv, err := obs.Start("127.0.0.1:0", obs.Options{
		Tool: "test",
		Run:  func() *telemetry.RunInfo { return &telemetry.RunInfo{Tool: "test"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var sb strings.Builder
	if err := watchTelemetry(srv.Addr(), 0, 1, &sb); err != nil {
		t.Fatalf("watch header poll: %v", err)
	}
	if !strings.Contains(sb.String(), "watching") || !strings.Contains(sb.String(), "tool test") {
		t.Errorf("watch header wrong: %q", sb.String())
	}

	// A counter bumped between two polls shows up as a delta line. The
	// bump happens before the watch starts, so poll 0 is the baseline and
	// poll 1 prints a frame (possibly all-zero deltas) — the frame
	// structure is what's pinned; live movement is covered by check.sh.
	telemetry.Add(telemetry.CtrEmuRuns, 5)
	sb.Reset()
	if err := watchTelemetry(srv.Addr(), 0, 2, &sb); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !strings.Contains(sb.String(), "[1] spans +") {
		t.Errorf("delta frame missing:\n%s", sb.String())
	}

	if err := watchTelemetry("127.0.0.1:1", 0, 1, io.Discard); err == nil {
		t.Error("expected an error for an unreachable server")
	}
}
