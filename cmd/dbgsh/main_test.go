package main

import (
	"os"
	"path/filepath"
	"testing"

	"connlab/internal/telemetry"
)

// TestTelemetryCmd: the telemetry subcommand renders a -metrics snapshot
// file written by another tool.
func TestTelemetryCmd(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	telemetry.Enable()
	telemetry.Inc(telemetry.CtrEmuRuns)
	snap := telemetry.TakeSnapshot()
	snap.Run = &telemetry.RunInfo{Tool: "campaign", Workers: 2}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := telemetry.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	if err := telemetryCmd([]string{path}); err != nil {
		t.Fatalf("telemetryCmd: %v", err)
	}
}

// TestTelemetryCmdErrors: wrong arity, missing files and non-snapshot
// JSON are clean errors.
func TestTelemetryCmdErrors(t *testing.T) {
	if err := telemetryCmd(nil); err == nil {
		t.Error("expected a usage error with no arguments")
	}
	if err := telemetryCmd([]string{"/nonexistent/m.json"}); err == nil {
		t.Error("expected an error for a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := telemetryCmd([]string{bad}); err == nil {
		t.Error("expected an error for malformed JSON")
	}
}
