package main

import (
	"flag"
	"fmt"
	"io"

	"connlab/internal/snapshot"
)

// snapCmd inspects a recon snapshot store directory: lists the entries
// with their sizes and compression ratios, optionally verifies every
// payload hash, and optionally prunes entries a current build can never
// load (stale format versions, unparseable files).
func snapCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dbgsh snap", flag.ContinueOnError)
	fs.SetOutput(stdout)
	verify := fs.Bool("verify", false, "decompress every entry and check payload hashes")
	prune := fs.Bool("prune", false, "delete entries with stale format versions or unparseable headers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dbgsh snap [-verify] [-prune] <dir>")
	}
	store, err := snapshot.Open(fs.Arg(0))
	if err != nil {
		return err
	}

	if *prune {
		removed, err := store.Prune()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "pruned %d stale entries\n", len(removed))
	}

	infos, err := store.Entries()
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Fprintln(stdout, "store is empty")
		return nil
	}
	var rawTotal, compTotal uint64
	fmt.Fprintf(stdout, "%-14s %-5s %-18s %10s %10s %6s  %s\n",
		"KIND", "ARCH", "KEY", "RAW", "STORED", "RATIO", "STATUS")
	for _, in := range infos {
		status := "ok"
		if in.Bad != "" {
			status = in.Bad
		}
		ratio := "-"
		if in.RawSize > 0 {
			ratio = fmt.Sprintf("%.2f", float64(in.CompSize)/float64(in.RawSize))
		}
		fmt.Fprintf(stdout, "%-14s %-5s %-18s %10d %10d %6s  %s\n",
			in.Key.Kind, in.Key.Arch, shortHash(in.Key.Hash), in.RawSize, in.FileSize, ratio, status)
		rawTotal += uint64(in.RawSize)
		compTotal += uint64(in.FileSize)
	}
	fmt.Fprintf(stdout, "%d entries, %d bytes raw, %d bytes on disk", len(infos), rawTotal, compTotal)
	if rawTotal > 0 {
		fmt.Fprintf(stdout, " (%.2fx)", float64(rawTotal)/float64(compTotal))
	}
	fmt.Fprintln(stdout)

	if *verify {
		ok, bad, err := store.Verify()
		if err != nil {
			return err
		}
		for _, in := range bad {
			fmt.Fprintf(stdout, "BAD %s: %s\n", in.Name, in.Bad)
		}
		fmt.Fprintf(stdout, "verify: %d ok, %d bad\n", ok, len(bad))
		if len(bad) > 0 {
			return fmt.Errorf("%d entries failed verification", len(bad))
		}
	}
	return nil
}

// shortHash renders the first 8 bytes of a content key for table display.
func shortHash(h [32]byte) string { return fmt.Sprintf("%x", h[:8]) }
