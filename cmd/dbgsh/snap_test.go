package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"connlab/internal/snapshot"
)

// snapTestStore populates a store with two entries and returns its dir.
func snapTestStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	store, err := snapshot.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k1 := snapshot.NewKey("gadget-index", "x86s", []byte("alpha"))
	k2 := snapshot.NewKey("recon-target", "arms", []byte("beta"))
	if err := store.Save(k1, []byte(strings.Repeat("gadget bytes ", 100))); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(k2, []byte("frame layout")); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestSnapCmdListAndVerify: the listing shows both entries with sizes,
// and -verify passes on an intact store.
func TestSnapCmdListAndVerify(t *testing.T) {
	dir := snapTestStore(t)
	var out strings.Builder
	if err := snapCmd([]string{"-verify", dir}, &out); err != nil {
		t.Fatalf("snapCmd: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"gadget-index", "recon-target", "x86s", "arms", "2 entries", "verify: 2 ok, 0 bad"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestSnapCmdVerifyCatchesCorruption: a flipped payload-hash byte makes
// -verify report the entry and exit non-zero.
func TestSnapCmdVerifyCatchesCorruption(t *testing.T) {
	dir := snapTestStore(t)
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("store dir: %v %v", ents, err)
	}
	path := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := snapCmd([]string{"-verify", dir}, &out); err == nil {
		t.Fatalf("verify passed on a corrupt store:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 bad") {
		t.Errorf("output does not flag the bad entry:\n%s", out.String())
	}
}

// TestSnapCmdPrune: stale-version entries are removed, current ones kept.
func TestSnapCmdPrune(t *testing.T) {
	dir := snapTestStore(t)
	// Forge a stale-version entry by bumping the version field of a copy.
	ents, _ := os.ReadDir(dir)
	data, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	stale := append([]byte(nil), data...)
	stale[4], stale[5] = 0, snapshot.FormatVersion+1
	if err := os.WriteFile(filepath.Join(dir, "gadget-index_x86s_"+strings.Repeat("0", 64)+".snap"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := snapCmd([]string{"-prune", dir}, &out); err != nil {
		t.Fatalf("snapCmd -prune: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "pruned 1 stale entries") {
		t.Errorf("prune count wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "2 entries") {
		t.Errorf("current entries were not kept:\n%s", out.String())
	}
}

// TestSnapCmdErrors: arity and path errors are clean.
func TestSnapCmdErrors(t *testing.T) {
	var out strings.Builder
	if err := snapCmd(nil, &out); err == nil {
		t.Error("expected a usage error with no arguments")
	}
	if err := snapCmd([]string{t.TempDir(), "extra"}, &out); err == nil {
		t.Error("expected a usage error with two directories")
	}
}
