package main

import (
	"fmt"
	"io"

	"connlab/internal/scenario"
)

// scenarioCmd inspects declarative scenario programs: listing the
// embedded specs, validating a spec file, and dumping what a spec
// compiles to (victim build options, corruption geometry per
// architecture, and the protection-matrix cells with their predicates).
func scenarioCmd(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dbgsh scenario list | validate <file.scn> | dump <name|file.scn>")
	}
	switch args[0] {
	case "list":
		for _, name := range scenario.Names() {
			s, err := scenario.Load(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-14s %s\n", name, s.Title)
		}
		return nil
	case "validate":
		if len(args) != 2 {
			return fmt.Errorf("usage: dbgsh scenario validate <file.scn>")
		}
		s, err := scenario.LoadFile(args[1])
		if err != nil {
			return err
		}
		cells, err := scenario.Compile(s, scenario.CompileOpts{})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: valid (%d campaign cells, hash %x)\n", s.Name, len(cells), s.Hash())
		return nil
	case "dump":
		if len(args) != 2 {
			return fmt.Errorf("usage: dbgsh scenario dump <name|file.scn>")
		}
		s, err := scenario.Resolve(args[1])
		if err != nil {
			return err
		}
		return dumpScenario(s, stdout)
	default:
		return fmt.Errorf("unknown scenario subcommand %q (want list, validate, or dump)", args[0])
	}
}

// dumpScenario renders the compiled view of a spec.
func dumpScenario(s *scenario.Spec, stdout io.Writer) error {
	fmt.Fprintf(stdout, "scenario %s (%s)\n", s.Name, s.Title)
	if s.CVE != "" {
		fmt.Fprintf(stdout, "  cve:       %s\n", s.CVE)
	}
	opts := s.BuildOpts()
	fmt.Fprintf(stdout, "  build:     variant=%s site=%s frame=%s bound=%s discovery=%s\n",
		opts.Variant, opts.Site, opts.Frame, s.Bound, s.Discovery)
	fmt.Fprintf(stdout, "  buffer:    %d bytes\n", opts.BufSize())
	for _, arch := range s.Arches {
		fi := s.FrameInfo(arch)
		fmt.Fprintf(stdout, "  %-9s ret/handler offset %d, null slots %v, declared reach %d\n",
			arch+":", fi.RetOffset, fi.NullOffsets, fi.Reach)
	}
	cells, err := scenario.Compile(s, scenario.CompileOpts{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "  matrix:    %d cells\n", len(cells))
	for _, c := range cells {
		row, _ := scenario.RowFor(c.Protection)
		want, _ := s.Expected(c.Kind, c.Arch, row)
		fmt.Fprintf(stdout, "    %-36s expect %v\n",
			fmt.Sprintf("%s/%s/%s", c.Arch, c.Kind, c.Protection), want)
	}
	return nil
}
