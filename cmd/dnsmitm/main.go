// Command dnsmitm demonstrates the attacker's man-in-the-middle DNS
// server on the simulated network: it stands up a victim proxy host and
// a malicious resolver, routes a client lookup through them, and reports
// what the crafted response did to the device.
//
// Usage:
//
//	dnsmitm -arch x86s -kind code-injection
//	dnsmitm -arch arms -kind rop-memcpy -wx -aslr
package main

import (
	"flag"
	"fmt"
	"os"

	"connlab/internal/core"
	"connlab/internal/dnsserver"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/netsim"
	"connlab/internal/obs"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnsmitm:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	archFlag := flag.String("arch", "x86s", "victim architecture: x86s or arms")
	kindFlag := flag.String("kind", "code-injection", "exploit kind")
	wx := flag.Bool("wx", false, "enable W⊕X on the device")
	aslr := flag.Bool("aslr", false, "enable ASLR on the device")
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	// Telemetry must be live before the network is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "dnsmitm", nil)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer func() {
		run := &telemetry.RunInfo{Tool: "dnsmitm", Devices: 1, Scenarios: 1}
		if ferr := tf.Finish(run, nil, nil); ferr != nil && err == nil {
			err = ferr
		}
	}()

	arch := isa.Arch(*archFlag)
	cfg := kernel.Config{WX: *wx, ASLR: *aslr, Seed: 2002}

	// Attacker recon + payload.
	tgt, err := exploit.Recon(arch, victim.BuildOpts{},
		kernel.Config{WX: *wx, ASLR: *aslr, Seed: 1001})
	if err != nil {
		return err
	}
	ex, err := exploit.Build(tgt, exploit.Kind(*kindFlag))
	if err != nil {
		return err
	}
	fmt.Printf("payload: %s\n", ex.Description)

	// Wired network: device <-> attacker resolver.
	net := netsim.New()
	net.Verbose = true
	deviceHost, err := net.AddHost("iot-device", netsim.IP{192, 168, 1, 50})
	if err != nil {
		return err
	}
	attackerHost, err := net.AddHost("attacker", netsim.IP{192, 168, 1, 66})
	if err != nil {
		return err
	}
	deviceHost.DNS = netsim.IP{192, 168, 1, 66}

	daemon, err := victim.NewDaemon(arch, victim.BuildOpts{}, cfg)
	if err != nil {
		return err
	}
	if _, err := dnsserver.RunProxy(deviceHost, daemon); err != nil {
		return err
	}
	mitm, err := dnsserver.RunMITMWire(attackerHost, ex.AppendResponse)
	if err != nil {
		return err
	}
	client, err := dnsserver.NewClient(deviceHost)
	if err != nil {
		return err
	}
	if _, err := client.Lookup(netsim.Addr{IP: deviceHost.IP, Port: dnsserver.DNSPort},
		"firmware.iot-vendor.example"); err != nil {
		return err
	}
	net.Run(64)

	for _, e := range net.Events {
		fmt.Println(" ", e)
	}
	outcome, detail := core.Classify(daemon.LastResult())
	fmt.Printf("queries hijacked: %d\n", mitm.Queries)
	fmt.Printf("device outcome:   %s (%s)\n", outcome, detail)
	return nil
}
