// Command labd is the lab's observability daemon: it runs campaigns on
// a live engine while serving the full ops surface — Prometheus
// /metrics, schema-v2 /snapshot JSON, SSE /events and /spans streams,
// Chrome-trace /trace downloads and pprof — the long-running
// campaign-as-a-service shape of the engine.
//
// Usage:
//
//	labd -listen 127.0.0.1:8089 -preset fleet -devices 32 -repeat 0
//	labd -listen :0 -devices 8 -hold          # serve until Ctrl-C
//
// Watch it live:
//
//	curl http://ADDR/metrics
//	curl -N http://ADDR/events
//	dbgsh telemetry -watch ADDR
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"connlab/internal/campaign"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/obs"
	"connlab/internal/scenario"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "labd:", err)
		os.Exit(1)
	}
}

// run is the daemon body; stop asks it to wind down (main wires it to
// SIGINT/SIGTERM, tests close it directly).
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("labd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	listen := fs.String("listen", "127.0.0.1:0", "serve the observability surface on `addr` (:0 picks a port)")
	preset := fs.String("preset", "fleet", "campaign preset: fleet, matrix, or sweep")
	archFlag := fs.String("arch", "x86s", "victim architecture: x86s or arms")
	kindFlag := fs.String("kind", "code-injection",
		"exploit kind: dos, code-injection, ret2libc, rop-execlp, rop-memcpy")
	devices := fs.Int("devices", 8, "fleet size per scenario (fleet and sweep presets)")
	patchedEvery := fs.Int("patched-every", 0, "every Nth device runs patched firmware (0 = none)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	rootSeed := fs.Int64("seed", campaign.DefaultRootSeed, "campaign root seed")
	reconSeed := fs.Int64("recon-seed", campaign.DefaultReconSeed, "attacker replica seed")
	repeat := fs.Int("repeat", 1, "campaigns to run back to back (0 = loop until signal or -max-runtime)")
	hold := fs.Bool("hold", false, "keep serving after the campaigns finish")
	maxRuntime := fs.Duration("max-runtime", 0, "hard wall-clock cap on the whole process (0 = none)")
	eventsLevel := fs.String("events-level", "info", "event-log threshold: debug, info, or warn")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// labd exists to observe, so telemetry is always on; the engine must
	// be built afterwards so its components take live handles.
	telemetry.Enable()
	lvl, ok := telemetry.ParseEventLevel(*eventsLevel)
	if !ok {
		return fmt.Errorf("unknown -events-level %q", *eventsLevel)
	}
	telemetry.SetEventLevel(lvl)

	arch := isa.Arch(*archFlag)
	if arch != isa.ArchX86S && arch != isa.ArchARMS {
		return fmt.Errorf("unknown arch %q", *archFlag)
	}
	kind := exploit.Kind(*kindFlag)
	var scenarios []campaign.Scenario
	switch *preset {
	case "fleet":
		scenarios = []campaign.Scenario{{
			Arch: arch, Kind: kind, Build: victim.BuildOpts{},
			Devices: *devices, PatchedEvery: *patchedEvery, Pineapple: true,
		}}
	case "sweep":
		for _, p := range campaign.PaperLevels() {
			scenarios = append(scenarios, campaign.Scenario{
				Arch: arch, Kind: kind, Protection: p, Build: victim.BuildOpts{},
				Devices: *devices, PatchedEvery: *patchedEvery, Pineapple: true,
			})
		}
	case "matrix":
		spec, err := scenario.Load("connman")
		if err != nil {
			return err
		}
		if scenarios, err = scenario.Compile(spec, scenario.CompileOpts{}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	totalDevices := 0
	for _, s := range scenarios {
		n := s.Devices
		if n <= 0 {
			n = 1
		}
		totalDevices += n
	}

	eng := campaign.New(campaign.Config{
		Workers: *workers, RootSeed: *rootSeed, ReconSeed: *reconSeed,
	})
	runInfo := telemetry.RunInfo{
		Tool: "labd", Workers: eng.Workers(), RootSeed: *rootSeed,
		ReconSeed: *reconSeed, Scenarios: len(scenarios), Devices: totalDevices,
	}
	srv, err := obs.Start(*listen, obs.Options{
		Tool: "labd",
		Run:  func() *telemetry.RunInfo { ri := runInfo; return &ri },
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	// The address line is labd's primary output: scripts parse it to
	// find the ephemeral port.
	fmt.Fprintf(stdout, "labd: serving http://%s\n", srv.Addr())

	var timeout <-chan time.Time
	if *maxRuntime > 0 {
		timeout = time.After(*maxRuntime)
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		case <-timeout:
			return true
		default:
			return false
		}
	}

	for i := 0; (*repeat == 0 || i < *repeat) && !stopped(); i++ {
		rep, err := eng.Run(scenarios)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "labd: campaign %d complete: %d scenarios, %d devices, %d owned, %d crashed\n",
			i+1, len(rep.Scenarios), totalDevices, rep.Owned, rep.Crashed)
	}
	if *hold && !stopped() {
		fmt.Fprintln(stdout, "labd: holding (Ctrl-C to exit)")
		select {
		case <-stop:
		case <-timeout:
		}
	}
	return nil
}
