package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"connlab/internal/telemetry"
)

// startLabd runs the daemon in a goroutine against a pipe, scans stdout
// for the serving line, and keeps draining output so the pipe never
// blocks the daemon. It returns the base URL and channels for the
// remaining lines and the final error.
func startLabd(t *testing.T, args []string, stop chan struct{}) (string, <-chan string, <-chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		err := run(args, pw, stop)
		pw.Close()
		errc <- err
	}()
	lines := make(chan string, 64)
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "labd: serving http://"); ok {
				urlc <- "http://" + rest
				continue
			}
			select {
			case lines <- line:
			default:
			}
		}
		close(lines)
	}()
	select {
	case u := <-urlc:
		return u, lines, errc
	case err := <-errc:
		t.Fatalf("labd exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("labd did not announce its address")
	}
	return "", nil, nil
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeWhileRunning is the acceptance path: a campaign loop runs
// (-repeat 0) while every endpoint answers, then stop winds it down.
func TestServeWhileRunning(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	stop := make(chan struct{})
	base, _, errc := startLabd(t, []string{
		"-listen", "127.0.0.1:0", "-devices", "4", "-workers", "2",
		"-repeat", "0", "-max-runtime", "60s",
	}, stop)

	// The campaign loop is live; poll until telemetry shows movement.
	deadline := time.Now().Add(30 * time.Second)
	for {
		body := get(t, base+"/metrics")
		if strings.Contains(body, "# TYPE connlab_emu_runs counter") &&
			!strings.Contains(body, "connlab_emu_runs 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no emulator activity visible in /metrics:\n%.500s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(get(t, base+"/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.SchemaVersion != 2 {
		t.Errorf("schema_version = %d, want 2", snap.SchemaVersion)
	}
	if snap.Run == nil || snap.Run.Tool != "labd" || snap.Run.Devices != 4 {
		t.Errorf("run metadata wrong: %+v", snap.Run)
	}
	if snap.EventCount == 0 {
		t.Error("no events recorded by a live campaign")
	}

	if body := get(t, base+"/events?once=1"); !strings.Contains(body, "event: event") {
		t.Errorf("/events?once=1 produced no frames:\n%.300s", body)
	}
	if body := get(t, base+"/spans?once=1"); !strings.Contains(body, "event: span") {
		t.Errorf("/spans?once=1 produced no frames:\n%.300s", body)
	}
	var trace []map[string]any
	if err := json.Unmarshal([]byte(get(t, base+"/trace")), &trace); err != nil {
		t.Fatalf("/trace not a trace_event array: %v", err)
	}
	if len(trace) == 0 {
		t.Error("trace empty during live campaign")
	}
	if body := get(t, base+"/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("pprof cmdline empty")
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("labd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("labd did not stop")
	}
}

// TestTraceLanes runs an 8-worker Pineapple fleet and checks the Chrome
// trace shows distinct per-worker stage lanes and netsim shard lanes,
// all keyed by attempt IDs.
func TestTraceLanes(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	stop := make(chan struct{})
	base, lines, errc := startLabd(t, []string{
		"-listen", "127.0.0.1:0", "-devices", "16", "-workers", "8",
		"-repeat", "1", "-hold", "-max-runtime", "60s",
	}, stop)

	// Wait for the campaign to finish so the trace covers all 16 devices.
	deadline := time.After(30 * time.Second)
waitDone:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("labd output closed before campaign completed")
			}
			if strings.Contains(line, "campaign 1 complete") {
				break waitDone
			}
		case <-deadline:
			t.Fatal("campaign never completed")
		}
	}

	var trace []map[string]any
	if err := json.Unmarshal([]byte(get(t, base+"/trace")), &trace); err != nil {
		t.Fatal(err)
	}
	stageTids := map[float64]bool{}  // pid 1: campaign workers
	netsimTids := map[float64]bool{} // pid 3: netsim shards
	attempts := map[string]bool{}
	for _, ev := range trace {
		if ev["ph"] != "X" {
			continue
		}
		pid, _ := ev["pid"].(float64)
		tid, _ := ev["tid"].(float64)
		switch pid {
		case 1:
			stageTids[tid] = true
		case 3:
			netsimTids[tid] = true
		}
		if args, ok := ev["args"].(map[string]any); ok {
			if a, ok := args["attempt"].(string); ok {
				attempts[a] = true
			}
		}
	}
	// On a multi-core box the 8 workers spread into distinct lanes; with
	// GOMAXPROCS=1 a single goroutine can drain the whole queue, so the
	// live check only requires the lane group to exist (multi-tid lane
	// rendering is pinned by telemetry's TestWriteChromeTrace).
	if len(stageTids) == 0 {
		t.Error("no campaign stage lanes in trace")
	}
	if runtime.GOMAXPROCS(0) >= 4 && len(stageTids) < 2 {
		t.Errorf("want multiple worker lanes, got tids %v", stageTids)
	}
	if len(netsimTids) == 0 {
		t.Error("no netsim shard lanes in trace")
	}
	// 16 devices → 16 distinct splitmix64 attempt IDs.
	if len(attempts) < 16 {
		t.Errorf("want >= 16 distinct attempt ids, got %d: %v", len(attempts), attempts)
	}

	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("labd exited with error: %v", err)
	}
}

// TestBadFlags covers the error paths without starting a server.
func TestBadFlags(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	for _, args := range [][]string{
		{"-preset", "nope"},
		{"-arch", "mips"},
		{"-events-level", "loud"},
	} {
		if err := run(args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
