// Command attack builds one exploit for the Connman-analog victim and
// fires it at a fresh instance under a chosen protection level.
//
// Usage:
//
//	attack -arch arms -kind rop-memcpy -wx -aslr
//	attack -arch x86s -kind code-injection
//	attack -arch x86s -auto -wx -aslr     # pick the strategy automatically
package main

import (
	"flag"
	"fmt"
	"os"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/victim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run() error {
	archFlag := flag.String("arch", "x86s", "victim architecture: x86s or arms")
	kindFlag := flag.String("kind", "dos",
		"exploit kind: dos, code-injection, ret2libc, rop-execlp, rop-memcpy")
	auto := flag.Bool("auto", false, "pick the strategy for the protections automatically")
	wx := flag.Bool("wx", false, "enable W⊕X on the target")
	aslr := flag.Bool("aslr", false, "enable ASLR on the target")
	cfi := flag.Bool("cfi", false, "enable the CFI shadow stack mitigation")
	canary := flag.Bool("canary", false, "build the victim with stack canaries")
	diversity := flag.Int64("diversity", 0, "diversity seed (0 = off)")
	patched := flag.Bool("patched", false, "run the patched (1.35) victim")
	variant := flag.String("variant", "connman", "victim variant: connman or dnsmasq")
	seed := flag.Int64("seed", 2002, "target machine seed")
	flag.Parse()

	arch := isa.Arch(*archFlag)
	if arch != isa.ArchX86S && arch != isa.ArchARMS {
		return fmt.Errorf("unknown arch %q", *archFlag)
	}
	lab := core.NewLab()
	lab.TargetSeed = *seed
	lab.Build.Patched = *patched
	switch *variant {
	case "connman":
	case "dnsmasq":
		lab.Build.Variant = victim.VariantDnsmasq
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	prot := core.Protection{
		WX: *wx, ASLR: *aslr, CFI: *cfi, Canary: *canary, DiversitySeed: *diversity,
	}

	kind := exploit.Kind(*kindFlag)
	if *auto {
		kind = exploit.StrategyFor(arch, prot.WX, prot.ASLR)
		fmt.Printf("auto-selected strategy: %s\n", kind)
	}
	res, err := lab.RunAttack(arch, kind, prot)
	if err != nil {
		return err
	}
	fmt.Printf("arch:       %s\n", res.Arch)
	fmt.Printf("attack:     %s\n", res.Kind)
	fmt.Printf("protection: %s\n", res.Protection)
	fmt.Printf("outcome:    %s\n", res.Outcome)
	fmt.Printf("detail:     %s\n", res.Detail)
	return nil
}
