// Command attack builds one exploit for the Connman-analog victim and
// fires it at a fresh instance under a chosen protection level.
//
// Usage:
//
//	attack -arch arms -kind rop-memcpy -wx -aslr
//	attack -arch x86s -kind code-injection
//	attack -arch x86s -auto -wx -aslr     # pick the strategy automatically
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"connlab/internal/core"
	"connlab/internal/exploit"
	"connlab/internal/gadget"
	"connlab/internal/isa"
	"connlab/internal/obs"
	"connlab/internal/scenario"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	fs.SetOutput(stdout)
	archFlag := fs.String("arch", "x86s", "victim architecture: x86s or arms")
	kindFlag := fs.String("kind", "dos",
		"exploit kind: dos, code-injection, ret2libc, rop-execlp, rop-memcpy")
	auto := fs.Bool("auto", false, "pick the strategy for the protections automatically")
	wx := fs.Bool("wx", false, "enable W⊕X on the target")
	aslr := fs.Bool("aslr", false, "enable ASLR on the target")
	cfi := fs.Bool("cfi", false, "enable the CFI shadow stack mitigation")
	canary := fs.Bool("canary", false, "build the victim with stack canaries")
	diversity := fs.Int64("diversity", 0, "diversity seed (0 = off)")
	patched := fs.Bool("patched", false, "run the patched (1.35) victim")
	variant := fs.String("variant", "connman", "victim variant: connman or dnsmasq")
	seed := fs.Int64("seed", 2002, "target machine seed")
	scenarioFlag := fs.String("scenario", "", "run a declarative scenario (embedded `name` or .scn file) instead of one attack")
	snapdir := fs.String("snapdir", "", "recon snapshot store `dir` (content-addressed, verified on load; empty = off)")
	gadgetCache := fs.Int("gadget-cache", 0, "gadget scan-cache LRU capacity (0 = default)")
	tf := telemetry.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	gadget.SetScanCacheCap(*gadgetCache)

	// Telemetry must be live before the lab is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "attack", func() *telemetry.RunInfo {
		return &telemetry.RunInfo{Tool: "attack", RootSeed: *seed, Devices: 1, Scenarios: 1}
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	arch := isa.Arch(*archFlag)
	if arch != isa.ArchX86S && arch != isa.ArchARMS {
		return fmt.Errorf("unknown arch %q", *archFlag)
	}
	lab := core.NewLab()
	lab.TargetSeed = *seed
	if *snapdir != "" {
		snaps, err := snapshot.Open(*snapdir)
		if err != nil {
			return err
		}
		gadget.SetSnapshotStore(snaps)
		lab.Snapshots = snaps
	}
	lab.Build.Patched = *patched
	switch *variant {
	case "connman":
	case "dnsmasq":
		lab.Build.Variant = victim.VariantDnsmasq
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	prot := core.Protection{
		WX: *wx, ASLR: *aslr, CFI: *cfi, Canary: *canary, DiversitySeed: *diversity,
	}

	if *scenarioFlag != "" {
		co := scenario.CompileOpts{
			Canary: *canary, CFI: *cfi, DiversitySeed: *diversity, Patched: *patched,
		}
		if explicit["arch"] {
			co.Arch = arch
		}
		if explicit["kind"] {
			co.Kind = exploit.Kind(*kindFlag)
		}
		rep, rerr := lab.RunScenario(*scenarioFlag, co)
		if rep != nil {
			fmt.Fprint(stdout, rep.Canonical())
		}
		if rerr != nil {
			return rerr
		}
		fmt.Fprintf(stdout, "all device outcomes within spec predicates\n")
		run := &telemetry.RunInfo{Tool: "attack", RootSeed: *seed,
			Devices: rep.TotalDevices(), Scenarios: len(rep.Scenarios)}
		return tf.Finish(run, rep.StageAggregates(), nil)
	}

	kind := exploit.Kind(*kindFlag)
	if *auto {
		kind = exploit.StrategyFor(arch, prot.WX, prot.ASLR)
		fmt.Fprintf(stdout, "auto-selected strategy: %s\n", kind)
	}
	res, err := lab.RunAttack(arch, kind, prot)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "arch:       %s\n", res.Arch)
	fmt.Fprintf(stdout, "attack:     %s\n", res.Kind)
	fmt.Fprintf(stdout, "protection: %s\n", res.Protection)
	fmt.Fprintf(stdout, "outcome:    %s\n", res.Outcome)
	fmt.Fprintf(stdout, "detail:     %s\n", res.Detail)
	if len(res.Trace) > 0 {
		fmt.Fprintf(stdout, "hijack flight recorder (%d control transfers):\n", len(res.Trace))
		fmt.Fprint(stdout, telemetry.FormatControlTrace(res.Trace))
	}
	run := &telemetry.RunInfo{Tool: "attack", RootSeed: *seed, Devices: 1, Scenarios: 1}
	if ferr := tf.Finish(run, nil, res.Trace); ferr != nil {
		return ferr
	}
	return nil
}
