package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"connlab/internal/telemetry"
)

// TestRunCodeInjection: the classic unprotected pop on x86.
func TestRunCodeInjection(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s", "-kind", "code-injection"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "outcome:    SHELL") {
		t.Errorf("expected SHELL outcome:\n%s", s)
	}
}

// TestRunAuto: -auto picks a working strategy for the posture.
func TestRunAuto(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s", "-auto", "-wx"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "auto-selected strategy:") || !strings.Contains(s, "outcome:") {
		t.Errorf("unexpected output:\n%s", s)
	}
}

// TestRunTrace: -trace arms the flight recorder, prints the hijack
// trace (E2: the x86 code-injection gadget walk) and writes a parseable
// Chrome trace and metrics snapshot.
func TestRunTrace(t *testing.T) {
	t.Cleanup(telemetry.Disable)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	var out bytes.Buffer
	err := run([]string{
		"-arch", "x86s", "-kind", "code-injection",
		"-trace", tracePath, "-metrics", metricsPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "outcome:    SHELL") {
		t.Fatalf("expected SHELL outcome:\n%s", s)
	}
	if !strings.Contains(s, "hijack flight recorder") || !strings.Contains(s, "ret") {
		t.Errorf("missing flight-recorder dump:\n%s", s)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if raw, err = os.ReadFile(metricsPath); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if snap.Run == nil || snap.Run.Tool != "attack" || snap.TraceEvents == 0 {
		t.Errorf("snapshot run=%+v trace_events=%d", snap.Run, snap.TraceEvents)
	}
}

// TestRunBadArch: a bogus architecture is a clean error.
func TestRunBadArch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "mips"}, &out); err == nil {
		t.Error("expected an error for an unknown arch")
	}
}
