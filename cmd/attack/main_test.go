package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCodeInjection: the classic unprotected pop on x86.
func TestRunCodeInjection(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s", "-kind", "code-injection"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "outcome:    SHELL") {
		t.Errorf("expected SHELL outcome:\n%s", s)
	}
}

// TestRunAuto: -auto picks a working strategy for the posture.
func TestRunAuto(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s", "-auto", "-wx"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "auto-selected strategy:") || !strings.Contains(s, "outcome:") {
		t.Errorf("unexpected output:\n%s", s)
	}
}

// TestRunBadArch: a bogus architecture is a clean error.
func TestRunBadArch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "mips"}, &out); err == nil {
		t.Error("expected an error for an unknown arch")
	}
}
