// Command experiments regenerates every paper experiment (E1–E12) and
// prints the reports recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-exp e8] [-recon-seed N] [-target-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"connlab/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment id (e1..e12) or all")
	reconSeed := flag.Int64("recon-seed", 1001, "attacker replica seed")
	targetSeed := flag.Int64("target-seed", 2002, "target machine seed")
	flag.Parse()

	lab := core.NewLab()
	lab.ReconSeed = *reconSeed
	lab.TargetSeed = *targetSeed

	if *exp == "all" {
		out, err := lab.RunAllExperiments()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	out, err := lab.RunExperiment(*exp)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
