// Command experiments regenerates every paper experiment (E1–E12) and
// prints the reports recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-exp e8] [-recon-seed N] [-target-seed N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"connlab/internal/core"
	"connlab/internal/gadget"
	"connlab/internal/obs"
	"connlab/internal/scenario"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stdout)
	exp := fs.String("exp", "all", "experiment id (e1..e12) or all")
	reconSeed := fs.Int64("recon-seed", 1001, "attacker replica seed")
	targetSeed := fs.Int64("target-seed", 2002, "target machine seed")
	workers := fs.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS)")
	scenarioFlag := fs.String("scenario", "", "run a declarative scenario (embedded `name` or .scn file) instead of a paper experiment")
	snapdir := fs.String("snapdir", "", "recon snapshot store `dir` (content-addressed, verified on load; empty = off)")
	gadgetCache := fs.Int("gadget-cache", 0, "gadget scan-cache LRU capacity (0 = default)")
	tf := telemetry.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry must be live before the lab is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "experiments", func() *telemetry.RunInfo {
		return &telemetry.RunInfo{Tool: "experiments", RootSeed: *targetSeed, ReconSeed: *reconSeed}
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	defer func() {
		run := &telemetry.RunInfo{Tool: "experiments"}
		if ferr := tf.Finish(run, nil, nil); ferr != nil && err == nil {
			err = ferr
		}
	}()

	gadget.SetScanCacheCap(*gadgetCache)
	lab := core.NewLab()
	lab.ReconSeed = *reconSeed
	lab.TargetSeed = *targetSeed
	lab.Workers = *workers
	if *snapdir != "" {
		snaps, serr := snapshot.Open(*snapdir)
		if serr != nil {
			return serr
		}
		gadget.SetSnapshotStore(snaps)
		lab.Snapshots = snaps
	}

	if *scenarioFlag != "" {
		rep, rerr := lab.RunScenario(*scenarioFlag, scenario.CompileOpts{})
		if rep != nil {
			fmt.Fprint(stdout, rep.Canonical())
		}
		if rerr != nil {
			return rerr
		}
		fmt.Fprintf(stdout, "all device outcomes within spec predicates\n")
		return nil
	}

	if *exp == "all" {
		out, err := lab.RunAllExperiments()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		return nil
	}
	out, err := lab.RunExperiment(*exp)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, out)
	return nil
}
