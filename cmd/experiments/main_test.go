package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunE1: one experiment renders its report (e1 is the cheapest).
func TestRunE1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "E1 §II: CVE-2017-12865 DoS") {
		t.Errorf("unexpected report:\n%s", out.String())
	}
}

// TestRunUnknownExperiment: a bogus id is a clean error.
func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e99"}, &out); err == nil {
		t.Error("expected an error for an unknown experiment")
	}
}
