package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunBenign: the default invocation parses a benign response and the
// daemon stays alive.
func TestRunBenign(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "parser outcome") || !strings.Contains(s, "daemon state: alive") {
		t.Errorf("unexpected output:\n%s", s)
	}
}

// TestRunCrash: -crash reproduces the CVE-2017-12865 DoS on 1.34.
func TestRunCrash(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "arms", "-crash"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "CRASHED") {
		t.Errorf("expected a crash on vulnerable firmware:\n%s", out.String())
	}
}

// TestRunPatchedSurvives: 1.35 shrugs off the oversized response.
func TestRunPatchedSurvives(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-arch", "x86s", "-patched", "-crash"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "daemon state: alive") {
		t.Errorf("patched daemon should survive:\n%s", out.String())
	}
}

// TestRunBadFlag: unknown flags error instead of exiting the process.
func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("expected an error for an unknown flag")
	}
}
