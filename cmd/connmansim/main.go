// Command connmansim loads the Connman-analog victim daemon and feeds it
// DNS responses: a benign one by default, or an oversized malicious one
// with -crash, printing what the emulated parser did. It is the
// quickest way to watch CVE-2017-12865 fire.
//
// Usage:
//
//	connmansim -arch arms            # parse a benign response
//	connmansim -arch arms -crash     # DoS the daemon
//	connmansim -arch x86s -patched -crash   # 1.35 survives
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"connlab/internal/core"
	"connlab/internal/dns"
	"connlab/internal/exploit"
	"connlab/internal/isa"
	"connlab/internal/kernel"
	"connlab/internal/obs"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "connmansim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("connmansim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	archFlag := fs.String("arch", "x86s", "architecture: x86s or arms")
	patched := fs.Bool("patched", false, "run the patched (1.35) parser")
	crash := fs.Bool("crash", false, "send the malicious oversized response")
	wx := fs.Bool("wx", false, "enable W⊕X")
	aslr := fs.Bool("aslr", false, "enable ASLR")
	seed := fs.Int64("seed", 1, "machine seed")
	tf := telemetry.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry must be live before the daemon is built: instrumented
	// components take their metric handles at construction.
	if err := tf.Start(); err != nil {
		return err
	}
	srv, err := obs.StartFlags(tf, "connmansim", nil)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer func() {
		run := &telemetry.RunInfo{Tool: "connmansim", RootSeed: *seed, Devices: 1, Scenarios: 1}
		if ferr := tf.Finish(run, nil, nil); ferr != nil && err == nil {
			err = ferr
		}
	}()

	arch := isa.Arch(*archFlag)
	opts := victim.BuildOpts{Patched: *patched}
	d, err := victim.NewDaemon(arch, opts, kernel.Config{WX: *wx, ASLR: *aslr, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "connmansim %s on %s (W⊕X=%v ASLR=%v)\n", opts.Version(), arch, *wx, *aslr)

	q := dns.NewQuery(0x2222, "pool.ntp.org", dns.TypeA)
	var pkt []byte
	if *crash {
		pkt, err = exploit.BuildDoS(arch).Response(q)
		fmt.Fprintln(stdout, "sending crafted oversized Type A response...")
	} else {
		resp := dns.NewResponse(q)
		resp.Answers = []dns.RR{dns.A("pool.ntp.org", 300, [4]byte{162, 159, 200, 1})}
		pkt, err = resp.Encode()
		fmt.Fprintln(stdout, "sending benign Type A response...")
	}
	if err != nil {
		return err
	}
	res, err := d.HandleResponse(pkt)
	if err != nil {
		return err
	}
	outcome, detail := core.Classify(res)
	fmt.Fprintf(stdout, "parser outcome: %s (%s), %d instructions\n", outcome, detail, res.Instructions)
	if d.Crashed() {
		fmt.Fprintln(stdout, "daemon state: CRASHED (denial of service)")
	} else {
		fmt.Fprintln(stdout, "daemon state: alive")
	}
	return nil
}
