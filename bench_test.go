// Package connlab_test holds the benchmark harness that regenerates every
// paper experiment (see DESIGN.md's experiment index and EXPERIMENTS.md
// for recorded outputs): one BenchmarkE<n> per table/figure-equivalent,
// plus micro-benchmarks of the substrates (emulator, DNS codec, gadget
// scan, label encoding).
//
// Run with:
//
//	go test -bench=. -benchmem
package connlab_test

import (
	"fmt"
	"testing"

	"connlab/internal/campaign"
	"connlab/internal/core"
	"connlab/internal/dns"
	"connlab/internal/dnsserver"
	"connlab/internal/exploit"
	"connlab/internal/gadget"
	"connlab/internal/image"
	"connlab/internal/isa"
	"connlab/internal/isa/arms"
	"connlab/internal/isa/x86s"
	"connlab/internal/kernel"
	"connlab/internal/lzss"
	"connlab/internal/mem"
	"connlab/internal/netsim"
	"connlab/internal/snapshot"
	"connlab/internal/telemetry"
	"connlab/internal/victim"
)

// benchLab returns a lab with the default reproducible seeds.
func benchLab() *core.Lab { return core.NewLab() }

// requireOutcome fails the benchmark if an attack stops reproducing.
func requireOutcome(b *testing.B, r core.AttackResult, err error, want core.Outcome) {
	b.Helper()
	if err != nil {
		b.Fatalf("attack: %v", err)
	}
	if r.Outcome != want {
		b.Fatalf("%s: outcome %s, want %s", r.String(), r.Outcome, want)
	}
}

// BenchmarkE1_DoSCrash regenerates E1: the §II denial of service against
// the vulnerable parser (one full recon-free crash per iteration).
func BenchmarkE1_DoSCrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := victim.NewDaemon(isa.ArchX86S, victim.BuildOpts{}, kernel.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.FireAt(d, exploit.BuildDoS(isa.ArchX86S))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Crashed() {
			b.Fatalf("no crash: %v", res)
		}
	}
}

// BenchmarkE2_X86CodeInjection regenerates E2 (§III-A1): recon + payload
// + root shell, no protections.
func BenchmarkE2_X86CodeInjection(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchX86S, exploit.KindCodeInjection, core.LevelNone)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
}

// BenchmarkE3_ARMCodeInjection regenerates E3 (§III-A2).
func BenchmarkE3_ARMCodeInjection(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchARMS, exploit.KindCodeInjection, core.LevelNone)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
}

// BenchmarkE4_X86Ret2Libc regenerates E4 (§III-B1): W⊕X bypass.
func BenchmarkE4_X86Ret2Libc(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchX86S, exploit.KindRet2Libc, core.LevelWX)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
}

// BenchmarkE5_ARMRopExeclp regenerates E5 (§III-B2, Listing 2).
func BenchmarkE5_ARMRopExeclp(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchARMS, exploit.KindRopExeclp, core.LevelWX)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
}

// BenchmarkE6_X86RopMemcpyChain regenerates E6 (§III-C1, Listings 3-4):
// the W⊕X+ASLR bypass.
func BenchmarkE6_X86RopMemcpyChain(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchX86S, exploit.KindRopMemcpy, core.LevelWXASLR)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
}

// BenchmarkE7_ARMRopBlxChain regenerates E7 (§III-C2, Listing 5).
func BenchmarkE7_ARMRopBlxChain(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchARMS, exploit.KindRopMemcpy, core.LevelWXASLR)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
}

// BenchmarkE8_AttackMatrix regenerates E8: the full 30-cell §III matrix.
func BenchmarkE8_AttackMatrix(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		results, err := lab.RunMatrix()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 30 {
			b.Fatalf("matrix cells = %d", len(results))
		}
	}
}

// BenchmarkE9_PineappleRemote regenerates E9 (§III-D, Fig. 1): rogue AP,
// DHCP hijack, remote exploit, end to end.
func BenchmarkE9_PineappleRemote(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		rep, err := lab.RunPineapple(core.PineappleConfig{
			Arch: isa.ArchARMS, Kind: exploit.KindRopMemcpy, Protection: core.LevelWXASLR,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Outcome != core.OutcomeShell {
			b.Fatalf("outcome %s", rep.Outcome)
		}
	}
}

// BenchmarkE10_Mitigations regenerates E10: the §IV mitigation table
// (3 diversity trials per iteration).
func BenchmarkE10_Mitigations(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		if _, err := lab.EvaluateMitigations(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_OtherVulns regenerates E11 (§V): the dnsmasq-analog
// retarget plus the HTTP-victim injection.
func BenchmarkE11_OtherVulns(b *testing.B) {
	lab := benchLab()
	lab.Build.Variant = victim.VariantDnsmasq
	for i := 0; i < b.N; i++ {
		_, res, err := lab.AutoExploit(isa.ArchARMS, core.LevelWXASLR)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != core.OutcomeShell {
			b.Fatalf("dnsmasq outcome %s", res.Outcome)
		}
		tgt, err := exploit.ReconHTTP(kernel.Config{Seed: lab.ReconSeed})
		if err != nil {
			b.Fatal(err)
		}
		req, err := exploit.BuildHTTPInjection(tgt)
		if err != nil {
			b.Fatal(err)
		}
		d, err := victim.NewHTTPDaemon(kernel.Config{Seed: lab.TargetSeed})
		if err != nil {
			b.Fatal(err)
		}
		res2, err := d.HandleRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		if res2.Status != kernel.StatusShell {
			b.Fatalf("http outcome %v", res2)
		}
	}
}

// BenchmarkE12_AutoExploitGen regenerates E12 (§VII): the automated
// generator across all six (arch, posture) combinations.
func BenchmarkE12_AutoExploitGen(b *testing.B) {
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
			for _, p := range core.PaperLevels() {
				_, res, err := lab.AutoExploit(arch, p)
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != core.OutcomeShell {
					b.Fatalf("%s/%s: %s", arch, p, res.Outcome)
				}
			}
		}
	}
}

// --- telemetry-overhead benchmarks ---
//
// The metrics-on twins of E2 and E10 measure the cost of live telemetry
// on full exploit runs; EXPERIMENTS.md records the on/off deltas. Enable
// precedes lab construction because instrumented components take their
// shard handles when built.

// BenchmarkE2_X86CodeInjectionTelemetry is E2 with metrics collection on.
func BenchmarkE2_X86CodeInjectionTelemetry(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunAttack(isa.ArchX86S, exploit.KindCodeInjection, core.LevelNone)
		requireOutcome(b, r, err, core.OutcomeShell)
	}
	if telemetry.TakeSnapshot().Counters[telemetry.CtrEmuRuns.Name()] == 0 {
		b.Fatal("telemetry collected nothing")
	}
}

// BenchmarkE10_MitigationsTelemetry is E10 with metrics collection on.
func BenchmarkE10_MitigationsTelemetry(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	lab := benchLab()
	for i := 0; i < b.N; i++ {
		if _, err := lab.EvaluateMitigations(3); err != nil {
			b.Fatal(err)
		}
	}
	if telemetry.TakeSnapshot().Counters[telemetry.CtrEmuRuns.Name()] == 0 {
		b.Fatal("telemetry collected nothing")
	}
}

// BenchmarkSnapshotTake measures the read side the live observability
// surface leans on: TakeSnapshot merges every shard's counters and
// histograms and copies the span and event tails. The state is
// populated the way a campaign leaves it — counters spread over many
// handles, histogram samples across the bucket range, full span and
// event rings.
func BenchmarkSnapshotTake(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	for i := 0; i < 64; i++ {
		h := telemetry.Handle()
		h.Add(telemetry.CtrEmuRuns, uint64(i))
		h.Add(telemetry.CtrEmuInstr, uint64(i)*1000)
		h.Observe(telemetry.HistEmuRunInstr, uint64(1)<<(uint(i)%20))
		h.Observe(telemetry.HistNetEpochBatch, uint64(i))
	}
	for i := 0; i < 512; i++ {
		telemetry.RecordSpan(telemetry.Span{Scenario: "bench", Device: "iot",
			Stage: "deliver", Worker: i % 8, Start: int64(i), Dur: 10, Attempt: uint64(i)})
		telemetry.LogEvent(telemetry.EvInfo, "campaign", "shell", "iot", uint64(i), 1, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := telemetry.TakeSnapshot()
		if snap.Counters[telemetry.CtrEmuRuns.Name()] == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// --- campaign engine benchmarks ---

// campaignBenchScenario is the fleet workload both campaign benchmarks
// run: ten devices under one configuration, direct delivery, the lab's
// historical per-device seed schedule.
const campaignBenchDevices = 10

// BenchmarkCampaignFleet measures the engine-backed fleet path: recon,
// payload construction, and the victim program build happen once per
// configuration and every device is served from the caches.
func BenchmarkCampaignFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := campaign.New(campaign.Config{Workers: 1})
		rep, err := eng.Run([]campaign.Scenario{{
			Arch: isa.ArchX86S, Kind: exploit.KindCodeInjection,
			Devices: campaignBenchDevices, TargetSeed: 2002,
		}})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Owned != campaignBenchDevices {
			b.Fatalf("owned = %d, want %d", rep.Owned, campaignBenchDevices)
		}
		if rep.ReconCache.Builds != 1 {
			b.Fatalf("recon builds = %d, want 1", rep.ReconCache.Builds)
		}
	}
}

// BenchmarkCampaignFleetSequentialBaseline measures the same fleet the
// way the pre-engine RunFleet did it: reconnaissance, payload
// construction, and the victim build redone from scratch for every
// device. The engine's speedup over this baseline is the recon cache's
// contribution (EXPERIMENTS.md records the measured ratio).
func BenchmarkCampaignFleetSequentialBaseline(b *testing.B) {
	q := dns.NewQuery(0x1337, "time.iot-vendor.example", dns.TypeA)
	for i := 0; i < b.N; i++ {
		owned := 0
		for di := 0; di < campaignBenchDevices; di++ {
			tgt, err := exploit.Recon(isa.ArchX86S, victim.BuildOpts{},
				kernel.Config{Seed: 1001})
			if err != nil {
				b.Fatal(err)
			}
			ex, err := exploit.Build(tgt, exploit.KindCodeInjection)
			if err != nil {
				b.Fatal(err)
			}
			d, err := victim.NewDaemon(isa.ArchX86S, victim.BuildOpts{},
				kernel.Config{Seed: 2002 + int64(100+di)})
			if err != nil {
				b.Fatal(err)
			}
			pkt, err := ex.Response(q)
			if err != nil {
				b.Fatal(err)
			}
			res, err := d.HandleResponse(pkt)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status == kernel.StatusShell {
				owned++
			}
		}
		if owned != campaignBenchDevices {
			b.Fatalf("owned = %d, want %d", owned, campaignBenchDevices)
		}
	}
}

// BenchmarkCampaignMatrix measures the engine running the full 30-cell
// E8 grid in one campaign (recon cached across cells that share a
// posture).
func BenchmarkCampaignMatrix(b *testing.B) {
	kinds := []exploit.Kind{
		exploit.KindDoS, exploit.KindCodeInjection, exploit.KindRet2Libc,
		exploit.KindRopExeclp, exploit.KindRopMemcpy,
	}
	var scenarios []campaign.Scenario
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		for _, p := range campaign.PaperLevels() {
			for _, k := range kinds {
				scenarios = append(scenarios, campaign.Scenario{
					Arch: arch, Kind: k, Protection: p, TargetSeed: 2002,
				})
			}
		}
	}
	for i := 0; i < b.N; i++ {
		eng := campaign.New(campaign.Config{})
		rep, err := eng.Run(scenarios)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TotalDevices() != 30 {
			b.Fatalf("devices = %d, want 30", rep.TotalDevices())
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkRecon measures one full attacker-side reconnaissance (replica
// build + link + gadget scan + frame discovery) per iteration, under the
// hardest posture (W⊕X+ASLR). This is the dominant per-trial cost the
// campaign engine amortizes; the interpreter hot path is what it spends
// its time in.
func BenchmarkRecon(b *testing.B) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		b.Run(string(arch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exploit.Recon(arch, victim.BuildOpts{},
					kernel.Config{WX: true, ASLR: true, Seed: 1001}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStepX86S measures one x86s interpreter step on a hot loop
// mixing memory loads/stores, ALU, stack traffic, and a branch — the
// instruction mix of the emulated parser.
func BenchmarkStepX86S(b *testing.B) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	a := x86s.NewAsm()
	a.Label("loop").
		MovRM(x86s.EAX, x86s.EBX, 0).
		AddRI(x86s.EAX, 1).
		MovMR(x86s.EBX, 0, x86s.EAX).
		PushR(x86s.EAX).
		PopR(x86s.EDX).
		Jmp("loop")
	code, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := x86s.New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(x86s.EBX, 0x4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev := c.Step(); ev.Kind != isa.EventRetired {
			b.Fatalf("step: %v", ev)
		}
	}
}

// BenchmarkStepARMS is the arms analog of BenchmarkStepX86S.
func BenchmarkStepARMS(b *testing.B) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	a := arms.NewAsm()
	a.Label("loop").
		Ldr(arms.R0, arms.R4, 0).
		AddI(arms.R0, arms.R0, 1).
		Str(arms.R0, arms.R4, 0).
		Push(arms.R0, arms.R1).
		Pop(arms.R0, arms.R1).
		BAlways("loop")
	code, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := arms.New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(arms.R4, 0x4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev := c.Step(); ev.Kind != isa.EventRetired {
			b.Fatalf("step: %v", ev)
		}
	}
}

// BenchmarkBlockStepX86S measures block dispatch over the same hot loop
// as BenchmarkStepX86S: one op is one StepBlock call chaining 100 loop
// iterations (600 instructions), with instrs/op and ns/instr reported so
// the speedup over single-step is read directly off the ns/instr metric.
func BenchmarkBlockStepX86S(b *testing.B) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	a := x86s.NewAsm()
	a.Label("loop").
		MovRM(x86s.EAX, x86s.EBX, 0).
		AddRI(x86s.EAX, 1).
		MovMR(x86s.EBX, 0, x86s.EAX).
		PushR(x86s.EAX).
		PopR(x86s.EDX).
		Jmp("loop")
	code, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := x86s.New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(x86s.EBX, 0x4000)
	for i := 0; i < 8; i++ {
		if ev := c.StepBlock(600); ev.Kind != isa.EventRetired {
			b.Fatalf("warm: %v", ev)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := c.InstrCount()
	for i := 0; i < b.N; i++ {
		if ev := c.StepBlock(600); ev.Kind != isa.EventRetired {
			b.Fatalf("step block: %v", ev)
		}
	}
	b.StopTimer()
	instrs := c.InstrCount() - start
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
}

// BenchmarkBlockStepARMS is the arms analog of BenchmarkBlockStepX86S.
func BenchmarkBlockStepARMS(b *testing.B) {
	m := mem.New()
	text, err := m.Map("text", 0x1000, 0x1000, mem.PermRX)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("data", 0x4000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Map("stack", 0x8000, 0x1000, mem.PermRW); err != nil {
		b.Fatal(err)
	}
	a := arms.NewAsm()
	a.Label("loop").
		Ldr(arms.R0, arms.R4, 0).
		AddI(arms.R0, arms.R0, 1).
		Str(arms.R0, arms.R4, 0).
		Push(arms.R0, arms.R1).
		Pop(arms.R0, arms.R1).
		BAlways("loop")
	code, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	copy(text.Data, code.Bytes)
	c := arms.New(m)
	c.SetPC(0x1000)
	c.SetSP(0x8F00)
	c.SetReg(arms.R4, 0x4000)
	for i := 0; i < 8; i++ {
		if ev := c.StepBlock(600); ev.Kind != isa.EventRetired {
			b.Fatalf("warm: %v", ev)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := c.InstrCount()
	for i := 0; i < b.N; i++ {
		if ev := c.StepBlock(600); ev.Kind != isa.EventRetired {
			b.Fatalf("step block: %v", ev)
		}
	}
	b.StopTimer()
	instrs := c.InstrCount() - start
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
}

// BenchmarkEmulatorThroughput measures emulated instructions per second
// on the benign parse path (both architectures).
func BenchmarkEmulatorThroughput(b *testing.B) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		b.Run(string(arch), func(b *testing.B) {
			d, err := victim.NewDaemon(arch, victim.BuildOpts{}, kernel.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			q := dns.NewQuery(1, "bench.example", dns.TypeA)
			resp := dns.NewResponse(q)
			resp.Answers = []dns.RR{dns.A("bench.example", 60, [4]byte{1, 2, 3, 4})}
			pkt, err := resp.Encode()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var instrs uint64
			for i := 0; i < b.N; i++ {
				res, err := d.HandleResponse(pkt)
				if err != nil {
					b.Fatal(err)
				}
				instrs += res.Instructions
			}
			b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
		})
	}
}

// BenchmarkDNSCodec measures wire-format encode+decode round trips.
func BenchmarkDNSCodec(b *testing.B) {
	q := dns.NewQuery(77, "a.long.name.for.the.codec.example.com", dns.TypeA)
	resp := dns.NewResponse(q)
	resp.Answers = []dns.RR{
		dns.A(q.Questions[0].Name, 300, [4]byte{10, 0, 0, 1}),
		dns.A(q.Questions[0].Name, 300, [4]byte{10, 0, 0, 2}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := resp.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dns.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGadgetScan measures a full ropper-style scan of the victim
// image.
func BenchmarkGadgetScan(b *testing.B) {
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		b.Run(string(arch), func(b *testing.B) {
			u, err := victim.BuildProgram(arch, victim.BuildOpts{})
			if err != nil {
				b.Fatal(err)
			}
			img, err := image.Link(u, image.DefaultProgramLayout(arch), image.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := gadget.NewFinder(img)
				if len(f.All()) == 0 {
					b.Fatal("no gadgets")
				}
			}
		})
	}
}

// BenchmarkLabelEncode measures the payload label-segmentation search for
// the hardest chain (the x86 memcpy chain).
func BenchmarkLabelEncode(b *testing.B) {
	tgt, err := exploit.Recon(isa.ArchX86S, victim.BuildOpts{},
		kernel.Config{WX: true, ASLR: true, Seed: 1001})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exploit.BuildRopMemcpyX86(tgt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sharded netsim + zone-trie benchmarks ---

// benchPumpStation re-sends its ping to the sink until its round budget
// is spent, so one Run call drives the whole population through every
// round in lock-stepped epochs — the scale scenario's traffic shape
// without the DNS layer, leaving the pump itself as the measured cost.
type benchPumpStation struct {
	sock      *netsim.UDPSocket
	dst       netsim.Addr
	remaining int
}

// benchPing is shared by every send: the network copies payloads on
// enqueue, so reuse is safe and keeps the allocator out of the
// measurement.
var benchPing = []byte("ping")

func (st *benchPumpStation) onReply(netsim.Datagram) {
	if st.remaining > 0 {
		st.remaining--
		st.sock.SendTo(st.dst, benchPing)
	}
}

// BenchmarkNetsimPump measures shared-world delivery throughput: every
// station ping-pongs with a central sink for a fixed number of rounds
// per op. Shard-count variants run the identical workload (transcripts
// are byte-equal by the determinism contract), so the ratio between
// them is purely pump overhead. datagrams/sec is the headline metric;
// on a single-core host the sharded variants measure coordination
// overhead, not parallel speedup.
func BenchmarkNetsimPump(b *testing.B) {
	for _, cfg := range []struct{ stations, shards, rounds int }{
		{10000, 1, 2}, {10000, 4, 2}, {100000, 1, 1}, {100000, 8, 1},
	} {
		name := fmt.Sprintf("st%d-shards%d", cfg.stations, cfg.shards)
		b.Run(name, func(b *testing.B) {
			n := netsim.NewSharded(cfg.shards)
			sinkHost, err := n.AddHost("sink", netsim.IP{10, 0, 0, 1})
			if err != nil {
				b.Fatal(err)
			}
			sinkSock, err := sinkHost.Bind(7, nil)
			if err != nil {
				b.Fatal(err)
			}
			echo := func(dg netsim.Datagram) { sinkSock.SendTo(dg.Src, dg.Payload) }
			if _, err := sinkHost.Bind(8, echo); err != nil {
				b.Fatal(err)
			}
			dst := netsim.Addr{IP: sinkHost.IP, Port: 8}
			stations := make([]*benchPumpStation, cfg.stations)
			for i := range stations {
				h, err := n.AddHost(fmt.Sprintf("st%06d", i),
					netsim.IP{20, byte(i >> 16), byte(i >> 8), byte(i)})
				if err != nil {
					b.Fatal(err)
				}
				st := &benchPumpStation{dst: dst}
				if st.sock, err = h.BindEphemeral(st.onReply); err != nil {
					b.Fatal(err)
				}
				stations[i] = st
			}
			perOp := cfg.stations * cfg.rounds * 2
			budget := perOp + 64
			b.ReportAllocs()
			b.ResetTimer()
			start := n.Delivered
			for i := 0; i < b.N; i++ {
				for _, st := range stations {
					st.remaining = cfg.rounds - 1
					st.sock.SendTo(dst, benchPing)
				}
				if got := n.Run(budget); got != perOp {
					b.Fatalf("delivered %d datagrams, want %d", got, perOp)
				}
			}
			b.StopTimer()
			dgrams := n.Delivered - start
			b.ReportMetric(float64(dgrams)/b.Elapsed().Seconds(), "dgrams/sec")
		})
	}
}

// BenchmarkZoneLookup measures one fast-path zone decision — question
// wire bytes in, IP out — on a population-scale zone. trie-wire is the
// resolver's live path; map-decode is the path it replaced (ParseView +
// name extraction + map probe) kept as the comparison baseline.
func BenchmarkZoneLookup(b *testing.B) {
	const names = 10000
	trie := dnsserver.NewZoneTrie()
	zone := make(map[string][4]byte, names)
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("st%06d.iot-vendor.example", i)
		ip := [4]byte{20, byte(i >> 16), byte(i >> 8), byte(i)}
		zone[name] = ip
		if err := trie.Add(name, ip); err != nil {
			b.Fatal(err)
		}
	}
	query, err := dns.NewQuery(7, "st004242.iot-vendor.example", dns.TypeA).Encode()
	if err != nil {
		b.Fatal(err)
	}
	qb := query[dns.HeaderSize:] // question section, the trie's input

	b.Run("trie-wire", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := trie.Lookup(qb); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("trie-name", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := trie.LookupName("st004242.iot-vendor.example"); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("map-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := dns.ParseView(query)
			if err != nil {
				b.Fatal(err)
			}
			q, err := v.Question()
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := zone[q.Name]; !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkVictimBuildLink measures compiling+linking the victim binary.
func BenchmarkVictimBuildLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, err := victim.BuildProgram(isa.ArchARMS, victim.BuildOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := image.Link(u, image.DefaultProgramLayout(isa.ArchARMS), image.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdRecon measures what the snapshot store exists to optimize:
// recon in a fresh process (the global gadget scan cache flushed every
// iteration, so section indexes cannot be served from memory). "live"
// probes replicas and rescans sections; "store" rehydrates frame layout,
// buffer address and gadget indexes from a pre-populated -snapdir.
func BenchmarkColdRecon(b *testing.B) {
	cfg := kernel.Config{WX: true, ASLR: true, Seed: 1001}
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		b.Run(string(arch)+"/live", func(b *testing.B) {
			gadget.SetSnapshotStore(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gadget.FlushScanCache()
				if _, err := exploit.Recon(arch, victim.BuildOpts{}, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(arch)+"/store", func(b *testing.B) {
			store, err := snapshot.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			gadget.SetSnapshotStore(store)
			defer gadget.SetSnapshotStore(nil)
			gadget.FlushScanCache()
			// Populate: one cold pass writes every snapshot warm passes read.
			if _, err := exploit.ReconWithStore(arch, victim.BuildOpts{}, cfg, store); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gadget.FlushScanCache()
				if _, err := exploit.ReconWithStore(arch, victim.BuildOpts{}, cfg, store); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// lzssCorpus concatenates the linked victim image's sections — the bytes
// the snapshot store actually compresses (machine code, rodata, memstr
// tables), not synthetic noise.
func lzssCorpus(b *testing.B) []byte {
	b.Helper()
	var buf []byte
	for _, arch := range []isa.Arch{isa.ArchX86S, isa.ArchARMS} {
		tgt, err := exploit.Recon(arch, victim.BuildOpts{}, kernel.Config{Seed: 1001})
		if err != nil {
			b.Fatal(err)
		}
		for _, sec := range tgt.Img.Sections {
			buf = append(buf, sec.Data...)
		}
	}
	return buf
}

// BenchmarkLZSS measures the codec on representative store payloads:
// encode and decode throughput (MB/s via B.SetBytes) plus the achieved
// ratio as a custom metric.
func BenchmarkLZSS(b *testing.B) {
	src := lzssCorpus(b)
	comp, err := lzss.Compress(nil, src, lzss.DefaultWindowBits, lzss.DefaultLookaheadBits)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		b.ReportMetric(float64(len(src))/float64(len(comp)), "ratio")
		for i := 0; i < b.N; i++ {
			if _, err := lzss.Compress(nil, src, lzss.DefaultWindowBits, lzss.DefaultLookaheadBits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			out, err := lzss.Decompress(nil, comp, len(src))
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != len(src) {
				b.Fatalf("decode length %d != %d", len(out), len(src))
			}
		}
	})
}
