# Tier-1 verification for connlab. `make check` is what CI and the
# roadmap mean by "tier-1": vet, build, the full test suite, and the
# race detector over the concurrent packages.

GO ?= go

.PHONY: check fmt vet build test race fuzz bench

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on: $$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry/... ./internal/campaign/... ./internal/core/... \
		./internal/netsim/... ./internal/dnsserver/...
	$(GO) test -tags netsimdebug ./internal/netsim/

# Short budgeted runs of every native fuzz target (seed corpora already
# run as part of `make test`).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzDecodeMessage -fuzztime $(FUZZTIME) ./internal/dns/
	$(GO) test -fuzz FuzzSkipName -fuzztime $(FUZZTIME) ./internal/dns/
	$(GO) test -fuzz FuzzEncodeDecodeRoundTrip -fuzztime $(FUZZTIME) ./internal/dns/
	$(GO) test -fuzz FuzzStep -fuzztime $(FUZZTIME) ./internal/isa/x86s/
	$(GO) test -fuzz FuzzStep -fuzztime $(FUZZTIME) ./internal/isa/arms/
	$(GO) test -fuzz FuzzScan -fuzztime $(FUZZTIME) ./internal/gadget/
	$(GO) test -fuzz FuzzZoneTrie -fuzztime $(FUZZTIME) ./internal/dnsserver/
	$(GO) test -fuzz FuzzLZSSRoundTrip -fuzztime $(FUZZTIME) -fuzzminimizetime=1x ./internal/lzss/
	$(GO) test -fuzz FuzzSnapshotLoad -fuzztime $(FUZZTIME) -fuzzminimizetime=1x ./internal/snapshot/
	$(GO) test -fuzz FuzzScenarioSpec -fuzztime $(FUZZTIME) ./internal/scenario/

# Full benchmark run; writes ns/op and allocs/op per benchmark to
# BENCH_8.json, then compares against the most recent earlier
# BENCH_*.json and fails on a >10% ns/op regression (see scripts/bench.sh
# for BENCHTIME/OUT/BASE/COMPARE overrides).
bench:
	sh scripts/bench.sh
