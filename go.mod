module connlab

go 1.22
