#!/bin/sh
# Tier-1 verification: formatting, vet, build, full test suite, race
# detector over the concurrent packages. Equivalent to `make check` for
# environments without make.
set -eux

cd "$(dirname "$0")/.."

# gofmt -l prints offending files without failing; turn any output into
# a hard failure before spending time on tests.
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" "$UNFORMATTED" >&2
    exit 1
fi
go vet ./...
go build ./...
go test ./...
go test -race ./internal/telemetry/... ./internal/campaign/... ./internal/core/... \
    ./internal/netsim/... ./internal/dnsserver/...
# The sharded netsim with the recycled-buffer poison armed: handlers
# that retain payload aliases fail deterministically under this tag.
go test -tags netsimdebug ./internal/netsim/
# The differential lockstep harness under the race detector: block
# dispatch and single-step must agree instruction-for-instruction while
# the race detector watches the translator's cache bookkeeping (-short
# trims the randomized-program target from 600k to 100k instructions).
go test -race -short ./internal/isa/isatest
# Short differential fuzz smokes over both block translators; any
# divergence found here is a translator bug by definition.
go test -run '^$' -fuzz FuzzBlockStep -fuzztime 5s ./internal/isa/x86s
go test -run '^$' -fuzz FuzzBlockStep -fuzztime 5s ./internal/isa/arms
# The wire-format zone trie against its map oracle: random wire names
# in, byte-identical hit/miss decisions out.
go test -run '^$' -fuzz FuzzZoneTrie -fuzztime 5s ./internal/dnsserver
# The scenario spec parser: never panics, and every accepted spec
# round-trips through its canonical rendering.
go test -run '^$' -fuzz FuzzScenarioSpec -fuzztime 5s ./internal/scenario
# Every embedded scenario must validate and compile, and the matrix
# preset — compiled from the connman spec — must reproduce the seed
# golden canonical report byte-for-byte.
for s in $(go run ./cmd/dbgsh scenario list | awk '{print $1}'); do
    go run ./cmd/dbgsh scenario dump "$s" > /dev/null
done
go run ./cmd/campaign -preset matrix -canonical | cmp - internal/scenario/testdata/paper_matrix.golden
# The LZSS codec and the snapshot-entry decoder: round-trips at folded
# parameter pairs, and arbitrary bytes must never panic or hand back an
# unverified payload. Minimization is capped to one attempt: interesting
# inputs are slow under fuzz instrumentation and the default 60s
# minimization budget reads as a 0 execs/sec stall.
go test -run '^$' -fuzz FuzzLZSSRoundTrip -fuzztime 5s -fuzzminimizetime=1x ./internal/lzss
go test -run '^$' -fuzz FuzzSnapshotLoad -fuzztime 5s -fuzzminimizetime=1x ./internal/snapshot
# Snapshot store round trip through a real CLI: with -snapdir unset the
# transcript must be byte-identical to the recorded behavior; a cold
# run populates the store; a warm run must print the identical
# transcript; and the store must verify clean afterwards.
SNAPDIR="$(mktemp -d)"
go run ./cmd/attack -arch arms -kind rop-memcpy -wx -aslr > "$SNAPDIR/base.txt"
go run ./cmd/attack -arch arms -kind rop-memcpy -wx -aslr -snapdir "$SNAPDIR/store" > "$SNAPDIR/cold.txt"
go run ./cmd/attack -arch arms -kind rop-memcpy -wx -aslr -snapdir "$SNAPDIR/store" > "$SNAPDIR/warm.txt"
cmp "$SNAPDIR/base.txt" "$SNAPDIR/cold.txt"
cmp "$SNAPDIR/cold.txt" "$SNAPDIR/warm.txt"
go run ./cmd/dbgsh snap -verify "$SNAPDIR/store"
rm -rf "$SNAPDIR"
# Live observability surface: labd must serve /metrics and /snapshot
# (schema v2) while a campaign loop runs on an ephemeral port, and the
# off-by-default contract must hold — a campaign's canonical transcript
# is byte-identical whether or not -listen is set.
OBSDIR="$(mktemp -d)"
go build -o "$OBSDIR/labd" ./cmd/labd
"$OBSDIR/labd" -listen 127.0.0.1:0 -devices 4 -workers 2 -repeat 0 \
    -max-runtime 120s > "$OBSDIR/labd.out" &
LABD_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's,^labd: serving http://,,p' "$OBSDIR/labd.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ]
# Retry the first scrape briefly: the campaign loop may still be warming.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/metrics" > "$OBSDIR/metrics.txt" 2>/dev/null \
        && grep -q '^connlab_emu_runs [1-9]' "$OBSDIR/metrics.txt"; then
        break
    fi
    sleep 0.1
done
grep -q '^# TYPE connlab_emu_runs counter$' "$OBSDIR/metrics.txt"
grep -q '^connlab_emu_runs [1-9]' "$OBSDIR/metrics.txt"
curl -sf "http://$ADDR/snapshot" > "$OBSDIR/snapshot.json"
grep -q '"schema_version": 2' "$OBSDIR/snapshot.json"
curl -sf "http://$ADDR/events?once=1" > /dev/null
curl -sf "http://$ADDR/trace" > /dev/null
go run ./cmd/dbgsh telemetry -watch "$ADDR" -interval 0.2s -n 2 > "$OBSDIR/watch.txt"
grep -q "^watching $ADDR" "$OBSDIR/watch.txt"
kill "$LABD_PID" 2>/dev/null || true
wait "$LABD_PID" 2>/dev/null || true
go run ./cmd/campaign -preset fleet -devices 4 -canonical > "$OBSDIR/plain.txt"
go run ./cmd/campaign -preset fleet -devices 4 -canonical -listen 127.0.0.1:0 \
    > "$OBSDIR/listen.txt" 2> /dev/null
cmp "$OBSDIR/plain.txt" "$OBSDIR/listen.txt"
rm -rf "$OBSDIR"
# One iteration of every micro-benchmark: catches benchmarks that no
# longer compile or fail at runtime without paying for a timed run.
go test -run '^$' -bench . -benchtime 1x .
