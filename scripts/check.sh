#!/bin/sh
# Tier-1 verification: vet, build, full test suite, race detector over
# the concurrent packages. Equivalent to `make check` for environments
# without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/campaign/... ./internal/core/...
# One iteration of every micro-benchmark: catches benchmarks that no
# longer compile or fail at runtime without paying for a timed run.
go test -run '^$' -bench . -benchtime 1x .
