#!/bin/sh
# Micro-benchmark harness: runs the root-package benchmarks (Step and
# block-dispatch loops, Recon, gadget scan, campaign fleet, netsim pump,
# zone lookup, telemetry-on variants, snapshot merge) and records ns/op and allocs/op
# per benchmark in BENCH_10.json, the machine-readable companion to the
# Performance table in EXPERIMENTS.md.
#
# Each benchmark runs in its own process: the heavyweight campaign
# benchmarks otherwise leave enough heap behind to inflate GC-sensitive
# neighbors like Recon by 30%+. Each process runs the benchmark COUNT
# times and the recorded ns/op is the minimum of the samples: on a
# shared VM the scheduling noise is strictly additive, so min-of-N is
# the estimator least polluted by noisy neighbors and keeps the 10%
# regression guard meaningful.
#
# After writing OUT the script compares against the most recent other
# BENCH_*.json (or an explicit BASE=file): it prints a per-benchmark
# ns/op delta table and exits non-zero if any benchmark regressed more
# than 10%. COMPARE=0 skips the comparison.
#
#   BENCHTIME=5s OUT=/tmp/bench.json sh scripts/bench.sh
#   BASE=BENCH_2.json sh scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_10.json}"
COMPARE="${COMPARE:-1}"
TMP="$(mktemp)"
BIN="$(mktemp)"
trap 'rm -f "$TMP" "$BIN"' EXIT

go test -c -o "$BIN" .

for name in $("$BIN" -test.list 'Benchmark.*'); do
    "$BIN" -test.run '^$' -test.bench "^${name}\$" -test.benchmem \
        -test.benchtime "$BENCHTIME" -test.count "$COUNT" | tee -a "$TMP"
done

# Token-scan each result line rather than relying on column positions:
# benchmarks that ReportMetric extra values (e.g. instrs/op) have more
# fields than the plain ns/op + allocs/op shape. With -count > 1 each
# benchmark emits several lines; keep the minimum ns/op sample.
awk '
/^Benchmark/ {
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!($1 in best)) { order[n++] = $1 } else if (ns + 0 >= best[$1]) next
    best[$1] = ns + 0
    seen[$1] = "{\"ns_per_op\": " ns ", \"allocs_per_op\": " \
        (allocs == "" ? "null" : allocs) "}"
}
END {
    printf "{\n"
    for (i = 0; i < n; i++)
        printf "  \"%s\": %s%s\n", order[i], seen[order[i]], (i < n - 1 ? "," : "")
    printf "}\n"
}
' "$TMP" > "$OUT"

echo "wrote $OUT"

[ "$COMPARE" = "0" ] && exit 0

# Pick the comparison baseline: explicit BASE, else the newest BENCH_*.json
# that is not the file just written.
if [ -z "${BASE:-}" ]; then
    BASE="$(ls -1 BENCH_*.json 2>/dev/null | grep -Fxv "$(basename "$OUT")" | sort | tail -n 1 || true)"
fi
if [ -z "${BASE:-}" ] || [ ! -f "$BASE" ]; then
    echo "no baseline BENCH_*.json to compare against; skipping comparison"
    exit 0
fi

echo
echo "comparing $OUT against $BASE (ns/op; >10% slower fails):"

# The JSON is the fixed one-benchmark-per-line shape this script writes,
# so a field scan is enough — no JSON parser needed.
awk -v fail=10 '
function parse(line, f,   name, ns) {
    if (line !~ /"ns_per_op"/) return
    name = line; sub(/^[ \t]*"/, "", name); sub(/".*/, "", name)
    ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
    if (f == 1) { base_ns[name] = ns + 0 }
    else if (!(name in cur_ns)) { cur_ns[name] = ns + 0; order[n++] = name }
}
NR == FNR { parse($0, 1); next }
{ parse($0, 2) }
END {
    printf "  %-45s %12s %12s %8s\n", "benchmark", "base", "now", "delta"
    worst = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in base_ns)) {
            printf "  %-45s %12s %12.0f %8s\n", name, "-", cur_ns[name], "new"
            continue
        }
        d = 100 * (cur_ns[name] - base_ns[name]) / base_ns[name]
        printf "  %-45s %12.0f %12.0f %+7.1f%%\n", name, base_ns[name], cur_ns[name], d
        if (d > worst) { worst = d; worstname = name }
    }
    if (worst > fail) {
        printf "FAIL: %s regressed %.1f%% (limit %d%%)\n", worstname, worst, fail
        exit 1
    }
    printf "ok: no benchmark regressed more than %d%%\n", fail
}
' "$BASE" "$OUT"
