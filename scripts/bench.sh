#!/bin/sh
# Micro-benchmark harness: runs the root-package benchmarks (Step loops,
# Recon, gadget scan, campaign fleet) and records ns/op and allocs/op per
# benchmark in BENCH_2.json, the machine-readable companion to the
# Performance table in EXPERIMENTS.md.
#
# Each benchmark runs in its own process: the heavyweight campaign
# benchmarks otherwise leave enough heap behind to inflate GC-sensitive
# neighbors like Recon by 30%+.
#
#   BENCHTIME=5s OUT=/tmp/bench.json sh scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_2.json}"
TMP="$(mktemp)"
BIN="$(mktemp)"
trap 'rm -f "$TMP" "$BIN"' EXIT

go test -c -o "$BIN" .

for name in $("$BIN" -test.list 'Benchmark.*'); do
    "$BIN" -test.run '^$' -test.bench "^${name}\$" -test.benchmem \
        -test.benchtime "$BENCHTIME" | tee -a "$TMP"
done

# Token-scan each result line rather than relying on column positions:
# benchmarks that ReportMetric extra values (e.g. instrs/op) have more
# fields than the plain ns/op + allocs/op shape.
awk '
/^Benchmark/ {
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!($1 in seen)) order[n++] = $1
    seen[$1] = "{\"ns_per_op\": " ns ", \"allocs_per_op\": " \
        (allocs == "" ? "null" : allocs) "}"
}
END {
    printf "{\n"
    for (i = 0; i < n; i++)
        printf "  \"%s\": %s%s\n", order[i], seen[order[i]], (i < n - 1 ? "," : "")
    printf "}\n"
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
